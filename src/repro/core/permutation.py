"""Node permutation schemes for load balancing (Sec. 5.1).

The uneven distribution of nonzeros across 2D shards makes naive sharding
badly imbalanced (Table 3: max/mean = 7.70 on europe_osm).  A single random
node permutation ``P`` (applied to rows and columns, Eqs. 5.1-5.2) fixes
most of it but leaves community structure concentrated near diagonal blocks
(3.24).  Plexus's double permutation applies *distinct* row/column
permutations, alternating every layer (Eqs. 5.3-5.4):

* even layers use ``A_even = P_r A P_c^T`` (input rows P_c-permuted, output
  rows P_r-permuted);
* odd layers use ``A_odd = P_c A P_r^T``;
* the input features are pre-permuted by ``P_c``; labels/masks are aligned
  to the *final layer's* output permutation.

Because permutation is a pure relabeling, training remains exact — the
equivalence tests un-permute distributed outputs and compare to the serial
reference.  Cost: two stored adjacency versions, i.e. ``min(6, L)`` unique
shards instead of ``min(3, L)`` (Sec. 5.1's memory trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import rng_from_seed

__all__ = ["PermutationScheme", "build_scheme", "permute_graph"]

Kind = Literal["none", "single", "double"]


@dataclass(frozen=True)
class PermutationScheme:
    """Resolved permutations for a training run.

    ``row_perm``/``col_perm`` map *new* index -> *old* node id, i.e.
    ``A_permuted = A[row_perm][:, col_perm]``.  For ``kind="none"`` both are
    identity; for ``"single"`` they are equal.
    """

    kind: Kind
    row_perm: np.ndarray
    col_perm: np.ndarray

    def __post_init__(self) -> None:
        n = self.row_perm.shape[0]
        if self.col_perm.shape != (n,):
            raise ValueError("row/col permutations must have equal length")
        # permutation validity (cheap O(n) check)
        for name, p in (("row", self.row_perm), ("col", self.col_perm)):
            seen = np.zeros(n, dtype=bool)
            seen[p] = True
            if not seen.all():
                raise ValueError(f"{name}_perm is not a permutation")

    @property
    def n(self) -> int:
        return self.row_perm.shape[0]

    @property
    def n_adjacency_versions(self) -> int:
        """Stored adjacency matrix versions (Sec. 5.1: 2 for double)."""
        return 2 if self.kind == "double" else 1

    def layer_row_perm(self, layer_idx: int) -> np.ndarray:
        """Row permutation of layer ``layer_idx``'s *output* (and of the
        adjacency matrix used at that layer)."""
        if self.kind != "double":
            return self.row_perm
        return self.row_perm if layer_idx % 2 == 0 else self.col_perm

    def layer_col_perm(self, layer_idx: int) -> np.ndarray:
        """Column permutation of the adjacency at ``layer_idx`` = row
        permutation of that layer's *input*."""
        if self.kind != "double":
            return self.col_perm
        return self.col_perm if layer_idx % 2 == 0 else self.row_perm

    def input_perm(self) -> np.ndarray:
        """Permutation applied to input-feature rows (P_c, Eq. 5.3)."""
        return self.layer_col_perm(0)

    def output_perm(self, n_layers: int) -> np.ndarray:
        """Permutation of the final layer's output rows — labels, masks and
        any read-out must be aligned with this."""
        if n_layers <= 0:
            raise ValueError("need at least one layer")
        return self.layer_row_perm(n_layers - 1)

    def permuted_adjacency(self, a: sp.csr_matrix, layer_idx: int) -> sp.csr_matrix:
        """The permuted global adjacency used by ``layer_idx``.

        Returned in canonical CSR form: column permutation leaves scipy's
        within-row index order scrambled, and downstream shard cutting
        (per-rank and block-diagonal alike) must see one well-defined
        accumulation order for the two execution engines to agree bitwise.
        """
        rp = self.layer_row_perm(layer_idx)
        cp = self.layer_col_perm(layer_idx)
        out = a[rp][:, cp].tocsr()
        out.sort_indices()
        return out


def build_scheme(n: int, kind: Kind = "double", seed: int | np.random.Generator = 0) -> PermutationScheme:
    """Draw the permutation scheme for an ``n``-node graph."""
    identity = np.arange(n)
    if kind == "none":
        return PermutationScheme("none", identity, identity.copy())
    rng = rng_from_seed(seed)
    p = rng.permutation(n)
    if kind == "single":
        return PermutationScheme("single", p, p.copy())
    if kind == "double":
        q = rng.permutation(n)
        return PermutationScheme("double", p, q)
    raise ValueError(f"unknown permutation kind {kind!r}")


def permute_graph(
    a: sp.csr_matrix,
    features: np.ndarray,
    labels: np.ndarray,
    scheme: PermutationScheme,
    n_layers: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: features permuted for input, labels for the output.

    (The adjacency is permuted per layer via
    :meth:`PermutationScheme.permuted_adjacency`, since even/odd layers use
    different versions under the double scheme.)
    """
    if a.shape[0] != scheme.n:
        raise ValueError("scheme size does not match graph")
    return features[scheme.input_perm()], labels[scheme.output_perm(n_layers)]
