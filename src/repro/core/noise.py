"""SpMM performance-variability model (the effect Sec. 5.2 mitigates).

On larger datasets at modest GPU counts the paper observes epoch-to-epoch
variability in the forward SpMM which ripples into the subsequent all-reduce
as straggler wait.  The mechanism is working-set dependent (TLB/cache
pressure on large per-call shards), so we model it as a multiplicative
slowdown drawn per kernel call whose magnitude grows with the call's local
nonzero count beyond a threshold.  Blocked aggregation (Sec. 5.2) splits the
call into row blocks below the threshold, which is exactly how it suppresses
the variability here — same cause and effect as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import rng_from_seed

__all__ = ["SpmmNoise"]


@dataclass
class SpmmNoise:
    """Stateful per-call slowdown sampler.

    ``threshold_nnz`` — calls at or below this many local nonzeros are
    deterministic.  ``sigma`` — scale of the half-normal slowdown for calls
    just above the threshold; grows logarithmically with size beyond it.
    """

    threshold_nnz: float = 8e6
    sigma: float = 0.35
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.threshold_nnz <= 0:
            raise ValueError("threshold_nnz must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._rng = rng_from_seed(self.seed)

    def multiplier(self, nnz: float) -> float:
        """Slowdown factor >= 1 for a kernel call touching ``nnz`` nonzeros."""
        if nnz <= self.threshold_nnz:
            return 1.0
        scale = self.sigma * (1.0 + np.log2(nnz / self.threshold_nnz))
        return 1.0 + abs(float(self._rng.normal(0.0, scale)))

    def multipliers(self, nnz) -> np.ndarray:
        """Per-rank slowdown vector for one batched kernel step.

        Draws only for the calls above the threshold, in rank order, through
        a single vectorized ``normal`` call — the generator fills array
        draws variate-by-variate, so the RNG stream (and hence every
        multiplier) is bitwise identical to scalar :meth:`multiplier` calls
        in the same order.  This is what lets noisy runs use the rank-batched
        engine while staying clock-exact with the per-rank reference.
        """
        nnz = np.asarray(nnz, dtype=np.float64)
        out = np.ones(nnz.shape[0], dtype=np.float64)
        hot = nnz > self.threshold_nnz
        if hot.any():
            scale = self.sigma * (1.0 + np.log2(nnz[hot] / self.threshold_nnz))
            out[hot] = 1.0 + np.abs(self._rng.normal(0.0, scale))
        return out
