"""Experiment drivers: one per table and figure of the paper's evaluation.

Every driver returns an :class:`ExperimentResult` whose rows regenerate the
corresponding table/figure series (who wins, by what factor, where the
crossovers fall) and can print itself in the paper's layout.  The
``benchmarks/`` tree wraps these drivers with pytest-benchmark and asserts
the headline shape properties; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments import (
    table1,
    table2,
    table3,
    table4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    loader,
)

__all__ = [
    "ExperimentResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "loader",
]
