"""Table 4: the six evaluation datasets — paper statistics plus the scaled
synthetic stand-ins this reproduction executes on."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.graph.datasets import dataset_stats, list_datasets, load_dataset

__all__ = ["run"]


def run(include_scaled: bool = True, scale: str = "tiny") -> ExperimentResult:
    """Regenerate Table 4 (optionally generating each scaled synthetic)."""
    headers = ["Dataset", "# Nodes", "# Edges", "# Non-zeros", "# Features", "# Classes"]
    if include_scaled:
        headers += ["scaled nodes", "scaled nnz"]
    res = ExperimentResult("Table 4: graph datasets", headers)
    order = ["reddit", "ogbn-products", "isolate-3-8m", "products-14m", "europe_osm", "ogbn-papers100m"]
    assert sorted(order) == list_datasets()
    for name in order:
        st = dataset_stats(name)
        row = [st.name, f"{st.nodes:,}", f"{st.edges:,}", f"{st.nonzeros:,}", st.features, st.classes]
        if include_scaled:
            ds = load_dataset(name, scale=scale, seed=0)
            row += [f"{ds.n_nodes:,}", f"{ds.norm_adjacency.nnz:,}"]
        res.add(*row)
    return res
