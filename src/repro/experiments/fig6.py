"""Figure 6: the two Sec. 5 kernel optimizations.

Left: blocked aggregation on Isolate-3-8M at 16/32 GPUs of Perlmutter —
splitting the aggregation SpMM into row blocks suppresses per-call
variability (computation drops) and pipelines the per-block all-reduces
behind compute (communication drops).

Right: dense-GEMM tuning on products-14M at 512/1024 GCDs of Frontier —
rewriting grad_W from TN mode to (NT)^T removes the ~50 ms rocBLAS
fallback, making the kernel negligible.
"""

from __future__ import annotations

from repro.dist.topology import FRONTIER, PERLMUTTER
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import dataset_stats
from repro.perf.analytic import PlexusAnalytic
from repro.perf.sweep import best_plexus_config

__all__ = ["blocking_comparison", "tuning_comparison", "run"]

#: the paper's Fig. 6 bar totals (ms) for reference
PAPER_BLOCKING_MS = {16: (836.7, 535.6), 32: (575.5, 452.8)}
PAPER_TUNING_MS = {512: (291.0, 248.2), 1024: (241.2, 198.7)}


def blocking_comparison(dataset: str = "isolate-3-8m", gpu_counts: tuple[int, ...] = (16, 32), n_blocks: int = 32):
    """(gpus -> (default EpochEstimate, blocked EpochEstimate)) on Perlmutter."""
    st = dataset_stats(dataset)
    dims = gcn_layer_dims(st.features, st.classes)
    out = {}
    for g in gpu_counts:
        default = PlexusAnalytic(st, dims, PERLMUTTER, aggregation_blocks=1)
        # The paper's blocked implementation keeps the per-block all-reduces
        # in flight behind the next block's SpMM — the nonblocking-handle
        # schedule — so the blocked estimate runs with overlap=True.  That
        # flag also hides the prefetched W all-gathers on the blocked side;
        # at this scale W is tiny (sub-ms per layer) so the Fig. 6 delta
        # remains blocking-dominated.
        blocked = PlexusAnalytic(st, dims, PERLMUTTER, aggregation_blocks=n_blocks, overlap=True)
        cfg, est_d = best_plexus_config(default, g)
        est_b = blocked.epoch_estimate(cfg)
        out[g] = (est_d, est_b, cfg)
    return out


def tuning_comparison(dataset: str = "products-14m", gcd_counts: tuple[int, ...] = (512, 1024)):
    """(gcds -> (default, tuned, grad_w default ms, grad_w tuned ms)) on Frontier."""
    st = dataset_stats(dataset)
    dims = gcn_layer_dims(st.features, st.classes)
    out = {}
    for g in gcd_counts:
        untuned = PlexusAnalytic(st, dims, FRONTIER, tune_dw_gemm=False)
        tuned = PlexusAnalytic(st, dims, FRONTIER, tune_dw_gemm=True)
        cfg, est_t = best_plexus_config(tuned, g)
        est_u = untuned.epoch_estimate(cfg)
        out[g] = (est_u, est_t, cfg)
    return out


def run() -> ExperimentResult:
    """Regenerate both panels of Fig. 6."""
    res = ExperimentResult(
        "Fig. 6: blocked aggregation (Perlmutter) and GEMM tuning (Frontier)",
        ["Experiment", "Setting", "Comm (ms)", "Comp (ms)", "Total (ms)", "Paper total (ms)"],
    )
    for g, (d, b, cfg) in blocking_comparison().items():
        pd, pb = PAPER_BLOCKING_MS[g]
        res.add(f"Isolate-3-8M @ {g} GPUs", "Default", f"{d.comm * 1e3:.1f}", f"{d.comp * 1e3:.1f}", f"{d.total * 1e3:.1f}", f"{pd}")
        res.add("", f"Blocking ({cfg.name})", f"{b.comm * 1e3:.1f}", f"{b.comp * 1e3:.1f}", f"{b.total * 1e3:.1f}", f"{pb}")
    for g, (u, t, cfg) in tuning_comparison().items():
        pu, pt = PAPER_TUNING_MS[g]
        dw_u = u.detail["gemm_dw"] * 1e3
        dw_t = t.detail["gemm_dw"] * 1e3
        res.add(f"products-14M @ {g} GCDs", f"Default (grad_W {dw_u:.1f} ms)", f"{u.comm * 1e3:.1f}", f"{u.comp * 1e3:.1f}", f"{u.total * 1e3:.1f}", f"{pu}")
        res.add("", f"Tuned   (grad_W {dw_t:.1f} ms, {cfg.name})", f"{t.comm * 1e3:.1f}", f"{t.comp * 1e3:.1f}", f"{t.total * 1e3:.1f}", f"{pt}")
    res.note("blocking must reduce both comm and comp; tuning must make grad_W negligible")
    return res
