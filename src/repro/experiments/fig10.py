"""Figure 10: strong scaling of Plexus on all six datasets, on Perlmutter
(GPUs) and Frontier (GCDs), up to 2048 devices.

Shape properties reproduced:

* On Perlmutter, denser graphs scale further (Reddit vs ogbn-products; the
  sparser graph goes communication-bound sooner).
* ogbn-papers100M reaches 2048 GPUs with scaling slowing at the end.
* On Frontier everything scales *better* because ROCm SpMM is an order of
  magnitude slower — compute stays dominant longer (Sec. 7.2).
* europe_osm (sparsest) scales worst on Frontier; Isolate-3-8M is
  consistently slower than products-14M there (more edges).
"""

from __future__ import annotations

from repro.dist.topology import FRONTIER, PERLMUTTER, MachineSpec
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import dataset_stats
from repro.perf.analytic import PlexusAnalytic
from repro.perf.sweep import ScalingPoint, strong_scaling_series

__all__ = ["GPU_COUNTS", "scaling_series", "run"]

#: per-dataset device counts (the paper's per-dataset ranges in Fig. 10)
GPU_COUNTS = {
    "reddit": [4, 8, 16, 32, 64, 128],
    "ogbn-products": [4, 8, 16, 32, 64, 128],
    "isolate-3-8m": [16, 32, 64, 128, 256, 512, 1024],
    "products-14m": [8, 16, 32, 64, 128, 256, 512, 1024],
    "europe_osm": [64, 128, 256, 512, 1024],
    "ogbn-papers100m": [64, 128, 256, 512, 1024, 2048],
}


def scaling_series(machine: MachineSpec) -> dict[str, list[ScalingPoint]]:
    """dataset -> Plexus scaling points on ``machine``."""
    out = {}
    for name, counts in GPU_COUNTS.items():
        st = dataset_stats(name)
        dims = gcn_layer_dims(st.features, st.classes)
        out[name] = strong_scaling_series(PlexusAnalytic(st, dims, machine), counts)
    return out


def run() -> ExperimentResult:
    """Regenerate both panels of Fig. 10."""
    res = ExperimentResult(
        "Fig. 10: Plexus strong scaling, all datasets",
        ["Machine", "Dataset", "Series (devices: ms / config)"],
    )
    for machine in (PERLMUTTER, FRONTIER):
        for name, pts in scaling_series(machine).items():
            cells = " ".join(f"{p.gpus}:{p.ms:.0f}" for p in pts)
            res.add(machine.name, name, cells)
    res.note("Frontier epochs are slower at small scale (ROCm SpMM ~10x slower) but scale further")
    return res
