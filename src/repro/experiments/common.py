"""Shared result container and constants for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.format import ascii_table

__all__ = ["ExperimentResult", "GCN_HIDDEN", "gcn_layer_dims", "KNOWN_FAILURES"]

#: the paper's network: three GCN layers, hidden dimension 128 (Sec. 6.2)
GCN_HIDDEN = 128


def gcn_layer_dims(features: int, classes: int, hidden: int = GCN_HIDDEN, n_layers: int = 3) -> list[int]:
    """``[features, 128, ..., classes]`` with ``n_layers`` GCN layers."""
    if n_layers < 1:
        raise ValueError("need at least one layer")
    return [features] + [hidden] * (n_layers - 1) + [classes]


#: failures the paper reports for the baselines (Sec. 7.1) — reproduced as
#: annotations since they stem from the original implementations' internals.
KNOWN_FAILURES: dict[tuple[str, str], str] = {
    ("bns-gcn", "ogbn-papers100m"): "METIS partitioning timed out after 5 hours",
    ("sa", "ogbn-papers100m"): "out of memory",
    ("sa+gvb", "ogbn-papers100m"): "GVB partitioner out of memory at 32 GPUs",
    ("sa", "isolate-3-8m"): "out of memory",
    ("sa+gvb", "isolate-3-8m"): "out of memory",
}


@dataclass
class ExperimentResult:
    """Rows + headers of one regenerated table/figure."""

    name: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(list(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"== {self.name} ==", ascii_table(self.headers, self.rows)]
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def print(self) -> None:  # noqa: A003 - mirrors pandas-style API
        print(self.render())
