"""Figure 9: epoch-time breakdown of BNS-GCN vs Plexus on products-14M,
32-256 GPUs of Perlmutter.

Reproduced shape: at 32 GPUs BNS-GCN's fine-grained communication beats
Plexus's dense collectives; by 64-128 the all-to-all inefficiency flips the
ordering; Plexus's computation time keeps shrinking with GPU count while
BNS-GCN's stalls (its per-partition work includes ever more boundary
nodes — the 18M -> 22M total-node growth the paper measures).
"""

from __future__ import annotations

from repro.dist.topology import PERLMUTTER
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import dataset_stats
from repro.perf.analytic import PlexusAnalytic, bns_analytic
from repro.perf.sweep import best_plexus_config

__all__ = ["breakdown", "run"]

GPU_COUNTS = [32, 64, 128, 256]


def breakdown(dataset: str = "products-14m", gpu_counts: list[int] | None = None):
    """gpus -> {framework: EpochEstimate} plus the boundary-growth metric."""
    st = dataset_stats(dataset)
    dims = gcn_layer_dims(st.features, st.classes)
    plexus = PlexusAnalytic(st, dims, PERLMUTTER)
    bns = bns_analytic(st, dims, PERLMUTTER)
    out = {}
    for g in gpu_counts or GPU_COUNTS:
        _, pe = best_plexus_config(plexus, g)
        out[g] = {
            "plexus": pe,
            "bns-gcn": bns.epoch_estimate(g),
            "bns_total_nodes": bns.total_nodes_with_boundary(g),
        }
    return out


def run() -> ExperimentResult:
    """Regenerate the Fig. 9 stacked bars as comm/comp rows."""
    res = ExperimentResult(
        "Fig. 9: breakdown of BNS-GCN and Plexus, products-14M (Perlmutter)",
        ["GPUs", "Framework", "Comm (ms)", "Comp (ms)", "Total (ms)", "BNS nodes incl. boundary"],
    )
    for g, row in breakdown().items():
        bns, plexus = row["bns-gcn"], row["plexus"]
        res.add(g, "BNS-GCN", f"{bns.comm * 1e3:.0f}", f"{bns.comp * 1e3:.0f}", f"{bns.total * 1e3:.0f}", f"{row['bns_total_nodes'] / 1e6:.1f}M")
        res.add(g, "Plexus", f"{plexus.comm * 1e3:.0f}", f"{plexus.comp * 1e3:.0f}", f"{plexus.total * 1e3:.0f}", "-")
    res.note("paper: BNS total nodes incl. boundary grow 18M -> 22M from 32 to 256 GPUs")
    return res
