"""Figure 9: epoch-time breakdown of BNS-GCN vs Plexus on products-14M,
32-256 GPUs of Perlmutter.

Reproduced shape: at 32 GPUs BNS-GCN's fine-grained communication beats
Plexus's dense collectives; by 64-128 the all-to-all inefficiency flips the
ordering; Plexus's computation time keeps shrinking with GPU count while
BNS-GCN's stalls (its per-partition work includes ever more boundary
nodes — the 18M -> 22M total-node growth the paper measures).

The breakdown also reports the nonblocking-collective schedule: the
Sec. 5.2 blocked configuration (``aggregation_blocks=OVERLAP_BLOCKS``) is
estimated twice on the eager run's grid — once eager (``plexus_blocked``)
and once with ``overlap=True`` (``plexus_overlap``: per-block all-reduces
pipelined behind the next block's SpMM, W all-gathers prefetched).  The
reported overlap delta is ``plexus_blocked.comm - plexus_overlap.comm`` —
same blocking on both sides, so it is purely the communication the
nonblocking handles hide.
"""

from __future__ import annotations

from dataclasses import replace

from repro.dist.topology import PERLMUTTER
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import dataset_stats
from repro.perf.analytic import PlexusAnalytic, bns_analytic
from repro.perf.sweep import best_plexus_config

__all__ = ["breakdown", "run"]

GPU_COUNTS = [32, 64, 128, 256]

#: aggregation row blocks for the overlap estimate (the Sec. 5.2 blocked
#: configuration whose per-block all-reduces the nonblocking schedule keeps
#: in flight; matches Fig. 6's blocking study)
OVERLAP_BLOCKS = 32


def breakdown(dataset: str = "products-14m", gpu_counts: list[int] | None = None):
    """gpus -> {framework: EpochEstimate} plus the boundary-growth metric.

    Each entry also carries the ``aggregation_blocks=OVERLAP_BLOCKS`` pair
    on the same grid configuration: ``plexus_blocked`` (eager) and
    ``plexus_overlap`` (nonblocking schedules on), whose comm difference is
    the overlap-attributable hiding.
    """
    st = dataset_stats(dataset)
    dims = gcn_layer_dims(st.features, st.classes)
    plexus = PlexusAnalytic(st, dims, PERLMUTTER)
    plexus_blocked = replace(plexus, aggregation_blocks=OVERLAP_BLOCKS)
    plexus_overlap = replace(plexus_blocked, overlap=True)
    bns = bns_analytic(st, dims, PERLMUTTER)
    out = {}
    for g in gpu_counts or GPU_COUNTS:
        cfg, pe = best_plexus_config(plexus, g)
        out[g] = {
            "plexus": pe,
            "plexus_blocked": plexus_blocked.epoch_estimate(cfg),
            "plexus_overlap": plexus_overlap.epoch_estimate(cfg),
            "bns-gcn": bns.epoch_estimate(g),
            "bns_total_nodes": bns.total_nodes_with_boundary(g),
        }
    return out


def run() -> ExperimentResult:
    """Regenerate the Fig. 9 stacked bars as comm/comp rows (plus the
    overlap-schedule comm column and its delta)."""
    res = ExperimentResult(
        "Fig. 9: breakdown of BNS-GCN and Plexus, products-14M (Perlmutter)",
        ["GPUs", "Framework", "Comm (ms)", "Comp (ms)", "Total (ms)",
         "Overlap comm (ms)", "Overlap Δ (ms)", "BNS nodes incl. boundary"],
    )
    for g, row in breakdown().items():
        bns, plexus = row["bns-gcn"], row["plexus"]
        blocked, overlap = row["plexus_blocked"], row["plexus_overlap"]
        res.add(g, "BNS-GCN", f"{bns.comm * 1e3:.0f}", f"{bns.comp * 1e3:.0f}", f"{bns.total * 1e3:.0f}", "-", "-", f"{row['bns_total_nodes'] / 1e6:.1f}M")
        res.add(g, "Plexus", f"{plexus.comm * 1e3:.0f}", f"{plexus.comp * 1e3:.0f}", f"{plexus.total * 1e3:.0f}",
                f"{overlap.comm * 1e3:.0f}", f"{(blocked.comm - overlap.comm) * 1e3:.0f}", "-")
    res.note("paper: BNS total nodes incl. boundary grow 18M -> 22M from 32 to 256 GPUs")
    res.note(f"overlap delta: blocked aggregation x{OVERLAP_BLOCKS} eager vs nonblocking "
             "(pipelined all-reduces + prefetched W all-gathers), same grid config")
    return res
