"""Figure 8: strong scaling of Plexus vs SA, SA+GVB and BNS-GCN on
Perlmutter (Reddit, Isolate-3-8M, products-14M).

Headline shape properties asserted by the bench:

* Reddit — SA wins at 4 GPUs but does not scale; BNS-GCN scales to ~32-64
  then degrades; Plexus alone scales to 128 GPUs.
* Isolate-3-8M — SA / SA+GVB fail (OOM, Sec. 7.1); BNS-GCN scales to ~64
  then degrades; Plexus reaches 1024 with a multi-x lead at 256.
* products-14M — BNS-GCN's inflection vs Plexus sits around 64-128 GPUs;
  SA starts slow and scales to ~128; Plexus leads from 128 up.
"""

from __future__ import annotations

from repro.dist.topology import PERLMUTTER, MachineSpec
from repro.experiments.common import ExperimentResult, KNOWN_FAILURES, gcn_layer_dims
from repro.graph.datasets import dataset_stats
from repro.perf.analytic import PlexusAnalytic, bns_analytic, sa_analytic
from repro.perf.sweep import ScalingPoint, strong_scaling_series

__all__ = ["GPU_COUNTS", "comparison_series", "run"]

GPU_COUNTS = {
    "reddit": [4, 8, 16, 32, 64, 128],
    "isolate-3-8m": [16, 32, 64, 128, 256, 512, 1024],
    "products-14m": [8, 16, 32, 64, 128, 256, 512, 1024],
}


def comparison_series(
    dataset: str,
    gpu_counts: list[int] | None = None,
    machine: MachineSpec = PERLMUTTER,
) -> dict[str, list[ScalingPoint]]:
    """framework -> scaling points for one dataset."""
    st = dataset_stats(dataset)
    dims = gcn_layer_dims(st.features, st.classes)
    counts = gpu_counts or GPU_COUNTS[dataset]
    return {
        "plexus": strong_scaling_series(PlexusAnalytic(st, dims, machine), counts),
        "bns-gcn": strong_scaling_series(bns_analytic(st, dims, machine), counts),
        "sa": strong_scaling_series(sa_analytic(st, dims, machine), counts),
        "sa+gvb": strong_scaling_series(sa_analytic(st, dims, machine, gvb=True), counts),
    }


def run(datasets: list[str] | None = None) -> ExperimentResult:
    """Regenerate the Fig. 8 series (time per epoch, ms)."""
    datasets = datasets or list(GPU_COUNTS)
    res = ExperimentResult("Fig. 8: strong scaling vs SOTA (Perlmutter)", ["Dataset", "Framework"] + ["ms @ G"])
    res.headers = ["Dataset", "Framework", "Series (GPUs: ms)"]
    for ds_name in datasets:
        series = comparison_series(ds_name)
        for fw, pts in series.items():
            failure = KNOWN_FAILURES.get((fw, ds_name))
            if failure:
                res.add(ds_name, fw, f"not run in paper: {failure}")
                continue
            cells = " ".join(
                f"{p.gpus}:{'OOM' if p.estimate.oom else f'{p.ms:.0f}'}" for p in pts
            )
            res.add(ds_name, fw, cells)
    res.note("speedup claims: 6x over BNS-GCN @32 (Reddit), 9x over SA @128 (Reddit),")
    res.note("  3.8x over BNS-GCN @256 (Isolate), 2.3x over SA @128 + 4x over BNS @256 (products-14M)")
    return res
