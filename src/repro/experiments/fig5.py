"""Figure 5 (and Sec. 4.1's regression): performance-model validation.

The paper times every factorization of 64 GPUs on ogbn-products, fits the
3-term SpMM regression on 67 runs across datasets/configurations, and shows
predicted epoch time tracking observed epoch time with 3D configurations in
front.  Here the "observed" side is the analytic kernel+collective simulator
(our testbed stand-in); the "predicted" side is the paper's model exactly:
the Eq. 4.4 term regression plus the Eq. 4.5-4.6 communication equations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.configs import classify_config, factor_triples
from repro.core.grid import GridConfig
from repro.core.perf_model import (
    CommModel,
    CompModel,
    SpmmRegression,
    fit_spmm_regression,
    regression_validation,
)
from repro.dist.topology import PERLMUTTER, MachineSpec
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import dataset_stats
from repro.perf.analytic import PlexusAnalytic

__all__ = ["collect_spmm_samples", "calibrated_regression", "predicted_vs_observed", "run"]

#: datasets x GPU counts used to build the regression training set (the
#: paper used 67 runs across datasets and configurations incl. the full
#: ogbn-products sweep at 64 GPUs)
_SAMPLE_SPECS = [
    ("ogbn-products", 64),
    ("reddit", 32),
    ("products-14m", 128),
    ("isolate-3-8m", 64),
]


def collect_spmm_samples(machine: MachineSpec = PERLMUTTER) -> tuple[np.ndarray, np.ndarray]:
    """(term vectors, observed SpMM seconds) across datasets/configs."""
    terms, times = [], []
    for ds_name, gpus in _SAMPLE_SPECS:
        st = dataset_stats(ds_name)
        dims = gcn_layer_dims(st.features, st.classes)
        comp = CompModel(st, dims)
        analytic = PlexusAnalytic(st, dims, machine)
        for cfg in factor_triples(gpus):
            terms.append(comp.terms(cfg))
            times.append(analytic.epoch_estimate(cfg).detail["spmm"])
    return np.asarray(terms), np.asarray(times)


def calibrated_regression(machine: MachineSpec = PERLMUTTER) -> tuple[SpmmRegression, dict[str, float]]:
    """Fit the 3-term regression on the sample sweep + validation metrics."""
    terms, times = collect_spmm_samples(machine)
    reg = fit_spmm_regression(terms, times)
    stats = regression_validation(terms, times, iterations=200)
    return reg, stats


@dataclass(frozen=True)
class ConfigPoint:
    """One point of the Fig. 5 scatter."""

    config: GridConfig
    family: str
    predicted_ms: float
    observed_ms: float


def predicted_vs_observed(
    dataset: str = "ogbn-products",
    gpus: int = 64,
    machine: MachineSpec = PERLMUTTER,
    regression: SpmmRegression | None = None,
) -> list[ConfigPoint]:
    """The Fig. 5 scatter: every factorization of ``gpus``."""
    st = dataset_stats(dataset)
    dims = gcn_layer_dims(st.features, st.classes)
    if regression is None:
        regression, _ = calibrated_regression(machine)
    comp = CompModel(st, dims)
    comm = CommModel(st, dims, machine)
    analytic = PlexusAnalytic(st, dims, machine)
    points = []
    for cfg in factor_triples(gpus):
        pred = regression.predict(comp.terms(cfg)) + comm.epoch_comm_time(cfg)
        obs = analytic.epoch_estimate(cfg).total
        points.append(
            ConfigPoint(config=cfg, family=classify_config(cfg), predicted_ms=pred * 1e3, observed_ms=obs * 1e3)
        )
    return points


def run(machine: MachineSpec = PERLMUTTER) -> ExperimentResult:
    """Regenerate Fig. 5 + the Sec. 4.1 regression validation numbers."""
    reg, stats = calibrated_regression(machine)
    points = predicted_vs_observed(regression=reg, machine=machine)
    res = ExperimentResult(
        "Fig. 5: predicted vs observed epoch time, ogbn-products @ 64 GPUs",
        ["Config", "Family", "Predicted (ms)", "Observed (ms)"],
    )
    for p in sorted(points, key=lambda p: p.observed_ms):
        res.add(p.config.name, p.family, f"{p.predicted_ms:.1f}", f"{p.observed_ms:.1f}")
    pred = np.array([p.predicted_ms for p in points])
    obs = np.array([p.observed_ms for p in points])
    corr = float(np.corrcoef(pred, obs)[0, 1])
    best_pred = min(points, key=lambda p: p.predicted_ms)
    best_obs = min(points, key=lambda p: p.observed_ms)
    res.note(f"predicted/observed correlation: {corr:.3f} (paper: strong positive)")
    res.note(
        f"regression validation (paper: R2 0.89 train / 0.79 test): "
        f"R2 {stats['r2_train']:.2f} train / {stats['r2_test']:.2f} test, "
        f"RMSE {stats['rmse_train'] * 1e3:.1f} / {stats['rmse_test'] * 1e3:.1f} ms"
    )
    res.note(f"model-selected config {best_pred.config.name}; true best {best_obs.config.name}")
    return res
