"""Table 2: Nsight Compute metrics for SpMM(A, H) under two 64-GPU
configurations of ogbn-products — U (Gx=64) vs V (Gy=64).

Config U shards the common dimension by 64 (short-fat dense operand);
config V shards the dense columns by 64 (tall-skinny).  Both do identical
FLOPs; V launches ~64x more CTAs, suffers uncoalesced accesses, and loses
an order of magnitude of L2/DRAM throughput — the motivating observation
behind the Eq. 4.4 shape penalties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult
from repro.gpu.device import A100_40GB
from repro.gpu.profiler import KernelProfile
from repro.gpu.spmm import SpmmShard, spmm_kernel_profile
from repro.graph.datasets import dataset_stats

__all__ = ["PAPER_METRICS", "config_u_shard", "config_v_shard", "run"]

#: the paper's measured values: (grid, uncoalesced, L2 %, DRAM %)
PAPER_METRICS = {
    "U": (20_223, 84_960, 61.31, 72.83),
    "V": (1_313_241, 3_939_912, 12.65, 8.24),
}


def config_u_shard() -> SpmmShard:
    """U: Gz=1, Gx=64, Gy=1 — A sharded by columns, common dim / 64."""
    st = dataset_stats("ogbn-products")
    return SpmmShard(rows=st.nodes, k=st.nodes // 64, cols=st.features, nnz=st.nonzeros // 64)


def config_v_shard() -> SpmmShard:
    """V: Gz=1, Gx=1, Gy=64 — dense columns / 64 (tall-skinny)."""
    st = dataset_stats("ogbn-products")
    return SpmmShard(rows=st.nodes, k=st.nodes, cols=st.features / 64, nnz=st.nonzeros)


def profiles() -> dict[str, KernelProfile]:
    return {
        "U": spmm_kernel_profile(config_u_shard(), A100_40GB),
        "V": spmm_kernel_profile(config_v_shard(), A100_40GB),
    }


def run() -> ExperimentResult:
    """Regenerate Table 2: model vs paper, both configurations."""
    res = ExperimentResult(
        "Table 2: Nsight metrics for SpMM(A,H), ogbn-products, configs U/V",
        ["Metric", "U (paper)", "U (model)", "V (paper)", "V (model)"],
    )
    prof = profiles()
    pu, pv = PAPER_METRICS["U"], PAPER_METRICS["V"]
    mu, mv = prof["U"], prof["V"]
    res.add("Grid Size", pu[0], mu.grid_size, pv[0], mv.grid_size)
    res.add("Uncoalesced Sectors", pu[1], mu.uncoalesced_sectors, pv[1], mv.uncoalesced_sectors)
    res.add("L2 Throughput (%)", pu[2], f"{mu.l2_throughput_pct:.2f}", pv[2], f"{mv.l2_throughput_pct:.2f}")
    res.add("DRAM Throughput (%)", pu[3], f"{mu.dram_throughput_pct:.2f}", pv[3], f"{mv.dram_throughput_pct:.2f}")
    res.add("Modeled time (ms)", "-", f"{mu.time_s * 1e3:.2f}", "-", f"{mv.time_s * 1e3:.2f}")
    res.note(f"V/U modeled slowdown: {mv.time_s / mu.time_s:.1f}x (paper observes ~8x at equal FLOPs)")
    return res
