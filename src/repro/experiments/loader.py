"""Sec. 5.4: parallel data loading.

The paper reports that for ogbn-papers100M on 64 GPUs, 2D-sharded loading
cut per-rank CPU memory from 146 GB to 9 GB and load time from 139 s to 7 s.
We run the same comparison executably on the scaled synthetic: every rank
either loads the full dataset (naive) or only the file blocks overlapping
its Plexus shard, and we report the measured bytes-read ratio.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.grid import GridConfig, PlexusGrid, axis_roles
from repro.core.sharding import LayerSharding
from repro.dist.cluster import VirtualCluster
from repro.dist.topology import PERLMUTTER
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import load_dataset
from repro.graph.shardio import ShardedDataLoader, save_sharded

__all__ = ["LoaderComparison", "compare_loading", "run"]


@dataclass(frozen=True)
class LoaderComparison:
    """Measured naive vs sharded loading costs."""

    naive_bytes_per_rank: int
    sharded_max_bytes_per_rank: int
    naive_seconds: float
    sharded_seconds: float

    @property
    def memory_reduction(self) -> float:
        return self.naive_bytes_per_rank / max(self.sharded_max_bytes_per_rank, 1)


def compare_loading(
    dataset: str = "ogbn-papers100m",
    n_nodes: int = 8192,
    config: GridConfig = GridConfig(4, 2, 2),
    file_grid: tuple[int, int] = (16, 16),
    out_dir: str | Path | None = None,
    seed: int = 0,
) -> LoaderComparison:
    """Write the sharded layout, then compare full vs per-rank loading."""
    ds = load_dataset(dataset, n_nodes=n_nodes, seed=seed)
    tmp = Path(out_dir) if out_dir else Path(tempfile.mkdtemp(prefix="repro_shards_"))
    save_sharded(ds.norm_adjacency, ds.features, ds.labels, tmp, grid=file_grid)

    # naive: one rank loads everything (every rank would, in the old path)
    naive_loader = ShardedDataLoader(tmp)
    naive_loader.load_full()
    naive_bytes = naive_loader.report.bytes_read
    naive_seconds = naive_loader.report.seconds

    # sharded: each rank loads only its layer-0 adjacency + feature shards
    cluster = VirtualCluster(config.total, PERLMUTTER)
    grid = PlexusGrid(cluster, config)
    dims = gcn_layer_dims(ds.n_features, ds.n_classes)
    sharding = LayerSharding(config, axis_roles(0), ds.n_nodes, dims[0], dims[1])
    max_bytes = 0
    total_seconds = 0.0
    for rank in range(config.total):
        loader = ShardedDataLoader(tmp)
        loader.load_adjacency(sharding.a_row_slice(grid, rank), sharding.a_col_slice(grid, rank))
        loader.load_features(sharding.f_row_subslice_z(grid, rank))
        loader.load_labels(sharding.out_row_slice(grid, rank))
        max_bytes = max(max_bytes, loader.report.bytes_read)
        total_seconds += loader.report.seconds
    # ranks load in parallel: wall time ~ slowest rank ~ mean here
    sharded_seconds = total_seconds / config.total
    return LoaderComparison(
        naive_bytes_per_rank=naive_bytes,
        sharded_max_bytes_per_rank=max_bytes,
        naive_seconds=naive_seconds,
        sharded_seconds=sharded_seconds,
    )


def run() -> ExperimentResult:
    """Regenerate the Sec. 5.4 comparison on the scaled papers100M."""
    cmp = compare_loading()
    res = ExperimentResult(
        "Sec. 5.4: parallel data loading (ogbn-papers100M scaled, 16 ranks)",
        ["Loader", "Bytes per rank", "Wall seconds"],
    )
    res.add("naive full load", f"{cmp.naive_bytes_per_rank:,}", f"{cmp.naive_seconds:.3f}")
    res.add("2D-sharded load (max rank)", f"{cmp.sharded_max_bytes_per_rank:,}", f"{cmp.sharded_seconds:.3f}")
    res.note(f"memory reduction {cmp.memory_reduction:.1f}x (paper: 146 GB -> 9 GB = 16.2x at 64 ranks)")
    return res
