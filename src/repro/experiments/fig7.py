"""Figure 7: correctness validation against the serial baseline.

The paper trains ogbn-products on 16 GPUs under seven different 3D
configurations and shows every loss curve coinciding with serial PyTorch
Geometric.  We run the same experiment executably: the scaled synthetic
ogbn-products, seven 16-rank grid configurations (the paper's legend), and
our serial reference — asserting per-epoch agreement to float tolerance,
which is stronger than the figure's visual overlap.
"""

from __future__ import annotations

import numpy as np

from repro.core.configs import PlexusOptions
from repro.core.grid import GridConfig
from repro.core.model import PlexusGCN
from repro.core.trainer import PlexusTrainer
from repro.dist.cluster import VirtualCluster
from repro.dist.topology import PERLMUTTER
from repro.experiments.common import ExperimentResult, gcn_layer_dims
from repro.graph.datasets import load_dataset
from repro.nn.optim import Adam
from repro.nn.serial import SerialGCN

__all__ = ["PAPER_CONFIGS", "validation_curves", "run"]

#: the seven 16-GPU configurations of the paper's Fig. 7 legend
PAPER_CONFIGS = ["X1Y2Z8", "X1Y16Z1", "X2Y8Z1", "X2Y4Z2", "X4Y1Z4", "X1Y1Z16", "X8Y1Z2"]


def validation_curves(
    epochs: int = 20,
    n_nodes: int = 1500,
    hidden: int = 32,
    seed: int = 7,
    permutation: str = "double",
    configs: list[str] | None = None,
) -> tuple[list[float], dict[str, list[float]]]:
    """(serial losses, config name -> distributed losses)."""
    ds = load_dataset("ogbn-products", n_nodes=n_nodes, feature_dim=32, seed=seed)
    dims = gcn_layer_dims(ds.n_features, ds.n_classes, hidden=hidden)
    serial = SerialGCN(dims, seed=0)
    opt = Adam(serial.parameters(), lr=1e-2)
    serial_losses = [
        serial.train_step(ds.norm_adjacency, ds.features, ds.labels, ds.train_mask, opt)
        for _ in range(epochs)
    ]
    curves: dict[str, list[float]] = {}
    for name in configs or PAPER_CONFIGS:
        cfg = GridConfig.parse(name)
        cluster = VirtualCluster(cfg.total, PERLMUTTER)
        model = PlexusGCN(
            cluster, cfg, ds.norm_adjacency, ds.features, ds.labels, ds.train_mask, dims,
            PlexusOptions(permutation=permutation, seed=0, lr=1e-2),
        )
        curves[name] = PlexusTrainer(model).train(epochs).losses
    return serial_losses, curves


def run(epochs: int = 20) -> ExperimentResult:
    """Regenerate Fig. 7 as a per-config max-deviation table."""
    serial_losses, curves = validation_curves(epochs=epochs)
    res = ExperimentResult(
        "Fig. 7: Plexus vs serial reference (ogbn-products, 16 ranks)",
        ["Config", "Final loss", "Max |loss - serial| over epochs"],
    )
    res.add("serial (PyG stand-in)", f"{serial_losses[-1]:.6f}", "-")
    for name, losses in curves.items():
        dev = max(abs(a - b) for a, b in zip(losses, serial_losses))
        res.add(name, f"{losses[-1]:.6f}", f"{dev:.2e}")
    res.note("the paper shows visually coincident curves; we assert <= 1e-6 agreement")
    return res
