"""Table 3: load-balance comparison of permutation methods on europe_osm.

Measures the max/mean nonzero ratio over 8x8 shards of the adjacency matrix
under no permutation, a single permutation, and the paper's double
permutation.  The paper reports 7.70 / 3.24 / 1.001; the synthetic road
network (banded, spatially ordered) reproduces the severe original
imbalance and double permutation's near-perfect fix.
"""

from __future__ import annotations

from repro.core.permutation import build_scheme
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset
from repro.sparse.partition import nnz_balance_stats

__all__ = ["PAPER_RATIOS", "permutation_ratios", "run"]

#: the paper's measured max/mean ratios (Table 3)
PAPER_RATIOS = {"Original": 7.70, "Single permutation": 3.24, "Double permutation": 1.001}


def permutation_ratios(
    dataset: str = "europe_osm",
    grid: tuple[int, int] = (8, 8),
    n_nodes: int | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """max/mean block-nnz ratio per permutation scheme on a scaled graph."""
    ds = load_dataset(dataset, n_nodes=n_nodes, seed=seed)
    a = ds.norm_adjacency
    out: dict[str, float] = {}
    out["Original"] = nnz_balance_stats(a, *grid).max_over_mean
    single = build_scheme(a.shape[0], "single", seed=seed)
    out["Single permutation"] = nnz_balance_stats(single.permuted_adjacency(a, 0), *grid).max_over_mean
    double = build_scheme(a.shape[0], "double", seed=seed)
    # the double scheme's balance must hold for BOTH stored versions
    r0 = nnz_balance_stats(double.permuted_adjacency(a, 0), *grid).max_over_mean
    r1 = nnz_balance_stats(double.permuted_adjacency(a, 1), *grid).max_over_mean
    out["Double permutation"] = max(r0, r1)
    return out


def run(n_nodes: int | None = None) -> ExperimentResult:
    """Regenerate Table 3 on the europe_osm synthetic."""
    res = ExperimentResult(
        "Table 3: max/mean nonzeros over 8x8 shards, europe_osm",
        ["Method", "Max/Mean (paper)", "Max/Mean (measured)"],
    )
    measured = permutation_ratios(n_nodes=n_nodes)
    for method, paper_val in PAPER_RATIOS.items():
        res.add(method, f"{paper_val:.3f}", f"{measured[method]:.3f}")
    res.note("measured on the scaled synthetic road network (spatial ordering)")
    return res
