"""Table 1: summary of the state of the art in distributed full-graph GNN
training — largest graph and GPU count reported by each system."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

__all__ = ["SOTA", "run"]

#: (name, year, nodes, edges, gpus) as reported in Table 1
SOTA: list[tuple[str, int, float, float, int]] = [
    ("AdaQP", 2023, 2.5e6, 114e6, 8),
    ("RDM", 2023, 3e6, 117e6, 8),
    ("MG-GCN", 2022, 111e6, 1.6e9, 8),
    ("Sancus", 2022, 111e6, 1.6e9, 8),
    ("MGG", 2023, 111e6, 1.6e9, 8),
    ("DGCL", 2021, 3e6, 117e6, 16),
    ("ROC", 2020, 9.5e6, 232e6, 16),
    ("NeutronStar", 2022, 42e6, 1.5e9, 16),
    ("GraNNDis", 2024, 111e6, 1.6e9, 16),
    ("NeutronTP", 2024, 244e6, 1.7e9, 16),
    ("CDFGNN", 2024, 111e6, 1.8e9, 16),
    ("PipeGCN", 2022, 111e6, 1.6e9, 32),
    ("CAGNET", 2020, 14.2e6, 231e6, 125),
    ("BNS-GCN", 2022, 111e6, 1.6e9, 192),
    ("SA+GVB", 2024, 111e6, 1.6e9, 256),
    ("Plexus (this work)", 2025, 111e6, 1.6e9, 2048),
]


def _fmt(v: float) -> str:
    if v >= 1e9:
        return f"{v / 1e9:.1f}B"
    return f"{v / 1e6:.1f}M"


def run() -> ExperimentResult:
    """Regenerate Table 1 (ordered by GPU count, as in the paper)."""
    res = ExperimentResult("Table 1: SOTA distributed full-graph GNN training", ["Name", "Year", "# Nodes", "# Edges", "# GPUs"])
    for name, year, nodes, edges, gpus in SOTA:
        res.add(name, year, _fmt(nodes), _fmt(edges), gpus)
    res.note("Plexus scales 8x beyond the largest prior GPU count (256).")
    return res
